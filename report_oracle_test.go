package bftbcast_test

// The facade-level differential oracle: randomized scenarios over the
// topology × placement × strategy × spec matrix run through EngineFast
// and EngineRef, asserting equality of the unified *Report (the
// engine-internal oracle in internal/sim asserts the raw Results; this
// one proves the Scenario/Engine/Report layer preserves the property).

import (
	"context"
	"reflect"
	"testing"

	"bftbcast"
	"bftbcast/internal/sim"
	"bftbcast/internal/sim/simtest"
)

// scenarioFromSimConfig lifts a randomized internal config into the
// public Scenario shape.
func scenarioFromSimConfig(t *testing.T, cfg sim.Config) *bftbcast.Scenario {
	t.Helper()
	sc, err := bftbcast.NewScenario(
		bftbcast.WithTopology(cfg.Topo),
		bftbcast.WithParams(cfg.Params),
		bftbcast.WithSpec(cfg.Spec),
		bftbcast.WithSource(cfg.Source),
		bftbcast.WithAdversary(cfg.Placement, cfg.Strategy),
		bftbcast.WithMaxSlots(cfg.MaxSlots),
	)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestReportDifferentialOracle(t *testing.T) {
	cases := 80
	if testing.Short() {
		cases = 25
	}
	gen, err := simtest.NewGen(0x5EE0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var completed, failed, attacked int
	for i := 0; i < cases; i++ {
		c := gen.Next()
		// Build twice: strategies are single-run objects, so each
		// engine needs its own instance.
		fastRep, fastErr := bftbcast.EngineFast.Run(ctx, scenarioFromSimConfig(t, c.Build()))
		refRep, refErr := bftbcast.EngineRef.Run(ctx, scenarioFromSimConfig(t, c.Build()))
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("case %d (%s): fast err=%v, ref err=%v", i, c.Desc, fastErr, refErr)
		}
		if fastErr != nil {
			continue // both engines rejected the config identically
		}
		if fastRep.Engine != "fast" || refRep.Engine != "ref" {
			t.Fatalf("case %d: engine names %q/%q", i, fastRep.Engine, refRep.Engine)
		}
		if fastRep.Sim == nil || refRep.Sim == nil || fastRep.Actor != nil || fastRep.Reactive != nil {
			t.Fatalf("case %d: wrong extension population", i)
		}
		// The unified core (and the Sim extension) must be bit-identical
		// across the two engines; only the Engine label may differ.
		norm := func(r *bftbcast.Report) bftbcast.Report {
			c := *r
			c.Engine = ""
			return c
		}
		if !reflect.DeepEqual(norm(fastRep), norm(refRep)) {
			t.Fatalf("case %d (%s): reports diverge:\nfast: %+v\nref:  %+v", i, c.Desc, fastRep, refRep)
		}
		if fastRep.Completed {
			completed++
		} else {
			failed++
		}
		if fastRep.BadMessages > 0 {
			attacked++
		}
	}
	// Guard against a vacuous oracle, mirroring the internal one.
	if completed == 0 || failed == 0 || attacked == 0 {
		t.Fatalf("degenerate case mix: completed=%d failed=%d attacked=%d",
			completed, failed, attacked)
	}
}
