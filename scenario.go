package bftbcast

import (
	"errors"
	"fmt"
)

// Scenario is the backend-neutral description of one broadcast
// experiment: the network topology, the fault model, the protocol, the
// adversary, and the run limits. Any Engine executes a Scenario and
// returns a unified *Report, so the same description drives the sparse
// simulation engine, the dense reference engine, the goroutine-per-node
// actor runtime, and the Section 5 reactive runtime (see NewEngine).
//
// Build Scenarios with NewScenario and functional options; derive sweep
// variants with With. The zero fields have engine-side defaults: Source
// defaults to node 0 and Params.R to the topology's radio range.
type Scenario struct {
	// Topo is the network topology (required).
	Topo Topology
	// Params is the fault model (r, t, mf). A zero R is filled in from
	// the topology's radio range by NewScenario.
	Params Params
	// Protocol selects the node-level protocol state machine the engine
	// drives: ProtocolThreshold (the default; executes Spec) or
	// ProtocolReactive (the Section 5 unknown-mf protocol, tuned by
	// Reactive). Protocol and engine are orthogonal: any protocol runs
	// on any backend, subject to the backend's own limits (the actor
	// runtime is fault-free).
	Protocol ProtocolID
	// Spec is the threshold protocol under test (ProtocolThreshold
	// runs). ProtocolReactive derives its protocol from Params and
	// Reactive instead and ignores it.
	Spec Spec
	// Source is the base station (defaults to node 0).
	Source NodeID
	// Placement chooses where bad nodes sit; nil means fault-free.
	Placement Placement
	// Strategy drives what bad nodes transmit in the slot-level engines;
	// nil means they stay silent. The actor engine (fault-free) and the
	// reactive engine (policy-driven, see Reactive) reject it.
	Strategy Strategy
	// Seed drives the engine-level randomness of backends that have any
	// (the reactive engine's coding patterns). Placements carry their
	// own seeds.
	Seed uint64
	// MaxSlots caps slot-level and actor runs; 0 picks a generous
	// engine-derived default.
	MaxSlots int
	// RunWorkers > 1 shards each big slot of a fast-engine run across
	// that many worker goroutines (in-run parallelism, DESIGN.md §11).
	// Reports and observer streams are bit-identical to the sequential
	// run for every worker count; 0 or 1 runs sequentially. The fast
	// engine's threshold protocol path parallelizes, with or without
	// Broadcasts (multi-broadcast slots shard through the folding seam,
	// DESIGN.md §12) — the reactive protocol and the other engines
	// ignore it.
	RunWorkers int
	// Broadcasts is the number of concurrent broadcast instances
	// (multi-broadcast traffic mode, DESIGN.md §12): M distinct sources
	// — the Scenario's Source plus M-1 good nodes drawn
	// deterministically from the seed — run the threshold protocol
	// concurrently over one TDMA slot stream, with staggered starts and
	// per-transmission batching. 0 and 1 both mean the classic
	// single-broadcast run; >= 2 requires the threshold protocol family
	// and populates the Report.Multi extension.
	Broadcasts int
	// Reactive tunes the reactive backend; its zero value picks the
	// documented defaults.
	Reactive ReactiveSpec
	// Observer, when non-nil, streams engine events (see Observer).
	Observer Observer
}

// ProtocolID names a node-level protocol state machine (see
// Scenario.Protocol and WithProtocol).
type ProtocolID string

// The protocol state machines.
const (
	// ProtocolThreshold is the static-budget threshold family: the
	// Scenario's Spec (protocol B, Bheter, the Koo baseline,
	// full-budget) executed through the shared acceptance machine. The
	// zero ProtocolID means ProtocolThreshold.
	ProtocolThreshold ProtocolID = "threshold"
	// ProtocolReactive is protocol Breactive (Section 5, unknown mf):
	// certified propagation over the reactive AUED-coded local
	// broadcast, tuned by Scenario.Reactive. The adversary is selected
	// by Reactive.Policy, not a Strategy.
	ProtocolReactive ProtocolID = "reactive"
)

// ReactiveSpec tunes the ProtocolReactive state machine of a Scenario.
// The protocol does not know the adversary budget mf; it only knows
// MMax.
type ReactiveSpec struct {
	// MMax is the loose budget bound known to the protocol (sets the
	// sub-bit length L). 0 defaults to max(64, Params.MF).
	MMax int
	// PayloadBits is the broadcast message size k (0 = 16).
	PayloadBits int
	// Policy selects the adversary behavior (0 = PolicyDisrupt).
	Policy AttackPolicy
	// QuietWindow overrides the (2r+1)²−1 NACK-free rounds required to
	// finish a local broadcast (0 = paper default). It only exists in
	// the deprecated sequential RunReactive wrapper: on the shared
	// engine stack a local broadcast ends when a data round draws no
	// NACK, which the quiet window cannot change (see DESIGN.md §10),
	// so engines reject a nonzero value instead of silently ignoring
	// it.
	QuietWindow int
	// MaxRoundsPerBroadcast caps one local broadcast (0 = generous
	// default). Deprecated sequential RunReactive wrapper only; the
	// engines cap runs with MaxSlots and reject a nonzero value.
	MaxRoundsPerBroadcast int
}

// ScenarioOption mutates a Scenario under construction (see NewScenario
// and Scenario.With).
type ScenarioOption func(*Scenario)

// NewScenario builds a validated Scenario from the options. A topology
// is required; Params.R defaults to the topology's radio range.
func NewScenario(opts ...ScenarioOption) (*Scenario, error) {
	sc := &Scenario{}
	for _, opt := range opts {
		opt(sc)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// With returns a validated copy of the Scenario with the options
// applied, leaving the receiver untouched. It is the sweep idiom: build
// one base Scenario, then derive one variant per point.
func (sc *Scenario) With(opts ...ScenarioOption) (*Scenario, error) {
	out := *sc
	for _, opt := range opts {
		opt(&out)
	}
	if err := out.validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// normalized returns a validated copy with defaults filled, leaving the
// receiver untouched. Engines run on the copy, so a hand-built Scenario
// is never mutated by Run and one Scenario value can safely drive
// concurrent runs.
func (sc *Scenario) normalized() (*Scenario, error) {
	out := *sc
	if err := out.validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// The typed validation errors: every rejection from NewScenario,
// Scenario.With, Scenario.Validate and the Engine entry points wraps
// exactly one of these, so callers that triage submissions — the
// bftsimd job daemon foremost — can classify failures with errors.Is
// instead of matching message text.
var (
	// ErrNoTopology rejects a Scenario without a topology.
	ErrNoTopology = errors.New("bftbcast: scenario needs a topology (WithTopology)")
	// ErrBadParams rejects a nonsensical fault model — r < 1, t outside
	// [0, r(2r+1)), or a negative mf. The wrapped cause names the field.
	ErrBadParams = errors.New("bftbcast: bad scenario Params")
	// ErrBadSource rejects a source node outside the topology.
	ErrBadSource = errors.New("bftbcast: scenario source out of range")
	// ErrBadLimits rejects a negative MaxSlots or RunWorkers.
	ErrBadLimits = errors.New("bftbcast: negative scenario limit")
	// ErrBadProtocol rejects an unknown ProtocolID.
	ErrBadProtocol = errors.New("bftbcast: unknown protocol")
	// ErrBadBroadcasts rejects a nonsensical Broadcasts count: negative,
	// more instances than nodes, or the multi-broadcast × reactive
	// conflict (the reactive protocol is single-broadcast).
	ErrBadBroadcasts = errors.New("bftbcast: bad scenario Broadcasts")
)

// Validate checks the Scenario against the engine-independent
// invariants without running it, returning nil or an error wrapping one
// of the typed validation errors (ErrNoTopology, ErrBadParams, ...).
// Defaults are filled on a copy, so the receiver is never mutated. It
// is how the jobs layer rejects a malformed submission at submit time
// instead of failing mid-sweep.
func (sc *Scenario) Validate() error {
	_, err := sc.normalized()
	return err
}

// validate fills defaults and checks the engine-independent invariants.
func (sc *Scenario) validate() error {
	if sc.Topo == nil {
		return ErrNoTopology
	}
	if sc.Params.R == 0 {
		sc.Params.R = sc.Topo.Range()
	}
	if err := sc.Params.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadParams, err)
	}
	if int(sc.Source) < 0 || int(sc.Source) >= sc.Topo.Size() {
		return fmt.Errorf("%w: source %d not in [0, %d)", ErrBadSource, sc.Source, sc.Topo.Size())
	}
	if sc.MaxSlots < 0 {
		return fmt.Errorf("%w: MaxSlots %d must be >= 0", ErrBadLimits, sc.MaxSlots)
	}
	if sc.RunWorkers < 0 {
		return fmt.Errorf("%w: RunWorkers %d must be >= 0", ErrBadLimits, sc.RunWorkers)
	}
	switch sc.Protocol {
	case "", ProtocolThreshold, ProtocolReactive:
	default:
		return fmt.Errorf("%w: %q (want %q or %q)",
			ErrBadProtocol, sc.Protocol, ProtocolThreshold, ProtocolReactive)
	}
	if sc.Broadcasts < 0 {
		return fmt.Errorf("%w: %d must be >= 0", ErrBadBroadcasts, sc.Broadcasts)
	}
	if sc.Broadcasts > 1 {
		if sc.Protocol == ProtocolReactive {
			return fmt.Errorf("%w: multi-broadcast traffic (WithBroadcasts >= 2) runs the threshold protocol family; the reactive protocol is single-broadcast", ErrBadBroadcasts)
		}
		if sc.Broadcasts > sc.Topo.Size() {
			return fmt.Errorf("%w: %d instances exceed the topology's %d nodes", ErrBadBroadcasts, sc.Broadcasts, sc.Topo.Size())
		}
	}
	return nil
}

// WithTopology sets the network topology.
func WithTopology(t Topology) ScenarioOption {
	return func(sc *Scenario) { sc.Topo = t }
}

// WithParams sets the fault model (r, t, mf).
func WithParams(p Params) ScenarioOption {
	return func(sc *Scenario) { sc.Params = p }
}

// WithSpec sets the threshold protocol under test.
func WithSpec(s Spec) ScenarioOption {
	return func(sc *Scenario) { sc.Spec = s }
}

// WithProtocol selects the node-level protocol state machine.
func WithProtocol(p ProtocolID) ScenarioOption {
	return func(sc *Scenario) { sc.Protocol = p }
}

// WithSource sets the base station.
func WithSource(id NodeID) ScenarioOption {
	return func(sc *Scenario) { sc.Source = id }
}

// WithPlacement sets where bad nodes sit.
func WithPlacement(p Placement) ScenarioOption {
	return func(sc *Scenario) { sc.Placement = p }
}

// WithStrategy sets what bad nodes transmit (slot-level engines only).
func WithStrategy(s Strategy) ScenarioOption {
	return func(sc *Scenario) { sc.Strategy = s }
}

// WithAdversary sets placement and strategy together.
func WithAdversary(p Placement, s Strategy) ScenarioOption {
	return func(sc *Scenario) { sc.Placement, sc.Strategy = p, s }
}

// WithSeed sets the engine-level random seed.
func WithSeed(seed uint64) ScenarioOption {
	return func(sc *Scenario) { sc.Seed = seed }
}

// WithMaxSlots caps the run length of the slot-level and actor engines.
func WithMaxSlots(n int) ScenarioOption {
	return func(sc *Scenario) { sc.MaxSlots = n }
}

// WithRunWorkers shards each big slot of a fast-engine run across n
// worker goroutines (see Scenario.RunWorkers). Results are bit-identical
// for every n; 0 or 1 runs sequentially.
func WithRunWorkers(n int) ScenarioOption {
	return func(sc *Scenario) { sc.RunWorkers = n }
}

// WithBroadcasts sets the number of concurrent broadcast instances (see
// Scenario.Broadcasts). 0 and 1 run the classic single broadcast; m >= 2
// multiplexes m instances with distinct seed-drawn sources over one TDMA
// slot stream.
func WithBroadcasts(m int) ScenarioOption {
	return func(sc *Scenario) { sc.Broadcasts = m }
}

// WithReactive tunes the reactive backend.
func WithReactive(r ReactiveSpec) ScenarioOption {
	return func(sc *Scenario) { sc.Reactive = r }
}

// WithObserver attaches a streaming event observer.
func WithObserver(o Observer) ScenarioOption {
	return func(sc *Scenario) { sc.Observer = o }
}
