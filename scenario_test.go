package bftbcast_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"bftbcast"
)

func TestNewScenarioValidation(t *testing.T) {
	if _, err := bftbcast.NewScenario(); err == nil {
		t.Fatal("scenario without topology: want an error")
	}
	tor, err := bftbcast.NewTorus(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bftbcast.NewScenario(
		bftbcast.WithTopology(tor),
		bftbcast.WithSource(bftbcast.NodeID(1000)),
	); err == nil {
		t.Fatal("out-of-range source: want an error")
	}
	sc, err := bftbcast.NewScenario(bftbcast.WithTopology(tor))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.R != tor.Range() {
		t.Fatalf("Params.R = %d, want topology range %d", sc.Params.R, tor.Range())
	}
}

// TestScenarioTypedValidationErrors pins the typed-error contract: every
// rejection class is classifiable with errors.Is, Validate does not
// mutate the receiver, and a well-formed scenario passes.
func TestScenarioTypedValidationErrors(t *testing.T) {
	tor, err := bftbcast.NewTorus(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	topo := bftbcast.WithTopology(tor)
	cases := []struct {
		name string
		want error
		opts []bftbcast.ScenarioOption
	}{
		{"no topology", bftbcast.ErrNoTopology, nil},
		{"bad source", bftbcast.ErrBadSource, []bftbcast.ScenarioOption{topo, bftbcast.WithSource(1000)}},
		{"negative mf", bftbcast.ErrBadParams, []bftbcast.ScenarioOption{topo, bftbcast.WithParams(bftbcast.Params{R: 1, T: 0, MF: -1})}},
		{"t too large", bftbcast.ErrBadParams, []bftbcast.ScenarioOption{topo, bftbcast.WithParams(bftbcast.Params{R: 1, T: 99, MF: 1})}},
		{"negative max slots", bftbcast.ErrBadLimits, []bftbcast.ScenarioOption{topo, bftbcast.WithMaxSlots(-1)}},
		{"negative run workers", bftbcast.ErrBadLimits, []bftbcast.ScenarioOption{topo, bftbcast.WithRunWorkers(-1)}},
		{"unknown protocol", bftbcast.ErrBadProtocol, []bftbcast.ScenarioOption{topo, bftbcast.WithProtocol("warp")}},
		{"negative broadcasts", bftbcast.ErrBadBroadcasts, []bftbcast.ScenarioOption{topo, bftbcast.WithBroadcasts(-1)}},
		{"broadcasts exceed nodes", bftbcast.ErrBadBroadcasts, []bftbcast.ScenarioOption{topo, bftbcast.WithBroadcasts(1001)}},
		{"broadcasts with reactive", bftbcast.ErrBadBroadcasts, []bftbcast.ScenarioOption{topo, bftbcast.WithProtocol(bftbcast.ProtocolReactive), bftbcast.WithBroadcasts(2)}},
	}
	for _, tc := range cases {
		_, err := bftbcast.NewScenario(tc.opts...)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: NewScenario error = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
		sc := &bftbcast.Scenario{}
		for _, opt := range tc.opts {
			opt(sc)
		}
		before := sc.Params
		if err := sc.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate error = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
		if sc.Params != before {
			t.Errorf("%s: Validate mutated the scenario (Params %+v -> %+v)", tc.name, before, sc.Params)
		}
	}
	sc, err := bftbcast.NewScenario(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario: Validate = %v", err)
	}
}

func TestScenarioWithDoesNotMutateBase(t *testing.T) {
	tor, err := bftbcast.NewTorus(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	base, err := bftbcast.NewScenario(bftbcast.WithTopology(tor), bftbcast.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	derived, err := base.With(bftbcast.WithSeed(2), bftbcast.WithMaxSlots(7))
	if err != nil {
		t.Fatal(err)
	}
	if base.Seed != 1 || base.MaxSlots != 0 {
		t.Fatalf("With mutated the base scenario: %+v", base)
	}
	if derived.Seed != 2 || derived.MaxSlots != 7 {
		t.Fatalf("With did not apply options: %+v", derived)
	}
}

func TestNewEngine(t *testing.T) {
	for _, want := range []string{"fast", "ref", "actor", "reactive"} {
		e, err := bftbcast.NewEngine(want)
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != want {
			t.Fatalf("NewEngine(%q).Name() = %q", want, e.Name())
		}
	}
	if _, err := bftbcast.NewEngine("warp"); err == nil {
		t.Fatal("unknown engine: want an error")
	}
	if got := len(bftbcast.Engines()); got != 4 {
		t.Fatalf("Engines() returned %d backends, want 4", got)
	}
}

// TestEngineRunDoesNotMutateScenario pins that Run normalizes a copy: a
// hand-built Scenario with a zero Params.R is runnable but stays
// untouched, so one value can drive concurrent runs.
func TestEngineRunDoesNotMutateScenario(t *testing.T) {
	tor, err := bftbcast.NewTorus(15, 15, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := bftbcast.Params{R: 1, T: 0, MF: 0}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	sc := &bftbcast.Scenario{Topo: tor, Params: bftbcast.Params{T: 0, MF: 0}, Spec: spec}
	rep, err := bftbcast.EngineFast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("run failed: %+v", rep)
	}
	if sc.Params.R != 0 {
		t.Fatalf("Run mutated the caller's scenario: Params.R = %d", sc.Params.R)
	}
}

// TestTimedOutParityAcrossEngines runs one under-capped fault-free
// scenario on the slot-level and actor backends: all must classify it
// as TimedOut, not Stalled (the Report contract).
func TestTimedOutParityAcrossEngines(t *testing.T) {
	params := bftbcast.Params{R: 2, T: 0, MF: 0}
	tor, err := bftbcast.NewTorus(20, 20, params.R)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := bftbcast.NewScenario(
		bftbcast.WithTopology(tor),
		bftbcast.WithParams(params),
		bftbcast.WithSpec(spec),
		bftbcast.WithMaxSlots(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []bftbcast.Engine{bftbcast.EngineFast, bftbcast.EngineRef, bftbcast.EngineActor} {
		rep, err := engine.Run(context.Background(), sc)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if !rep.TimedOut || rep.Stalled || rep.Completed {
			t.Fatalf("%s misclassifies a timeout: timedOut=%v stalled=%v completed=%v",
				engine.Name(), rep.TimedOut, rep.Stalled, rep.Completed)
		}
	}
}

func TestEngineScenarioMismatch(t *testing.T) {
	params := bftbcast.Params{R: 2, T: 2, MF: 2}
	tor, err := bftbcast.NewTorus(10, 10, params.R)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	adversarial, err := bftbcast.NewScenario(
		bftbcast.WithTopology(tor),
		bftbcast.WithParams(params),
		bftbcast.WithSpec(spec),
		bftbcast.WithAdversary(
			bftbcast.RandomPlacement{T: 2, Density: 0.05, Seed: 1},
			bftbcast.NewCorruptor(),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := bftbcast.EngineActor.Run(ctx, adversarial); err == nil ||
		!strings.Contains(err.Error(), "fault-free") {
		t.Fatalf("actor engine on adversarial scenario: err = %v, want fault-free rejection", err)
	}
	if _, err := bftbcast.EngineReactive.Run(ctx, adversarial); err == nil ||
		!strings.Contains(err.Error(), "Policy") {
		t.Fatalf("reactive engine with Strategy: err = %v, want policy rejection", err)
	}
}

// TestLegacyAndScenarioAgree pins the wrapper contract: a legacy RunSim
// call and the Scenario/Engine path produce bit-identical results.
func TestLegacyAndScenarioAgree(t *testing.T) {
	params := bftbcast.Params{R: 2, T: 3, MF: 2}
	tor, err := bftbcast.NewTorus(20, 20, params.R)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1019 the deprecated wrapper is the subject under test
	res, err := bftbcast.RunSim(bftbcast.SimConfig{
		Topo: tor, Params: params, Spec: spec,
		Placement: bftbcast.RandomPlacement{T: 3, Density: 0.1, Seed: 1},
		Strategy:  bftbcast.NewCorruptor(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := bftbcast.NewScenario(
		bftbcast.WithTopology(tor),
		bftbcast.WithParams(params),
		bftbcast.WithSpec(spec),
		bftbcast.WithAdversary(
			bftbcast.RandomPlacement{T: 3, Density: 0.1, Seed: 1},
			bftbcast.NewCorruptor(),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bftbcast.EngineFast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != res.Completed || rep.Slots != res.Slots ||
		rep.GoodMessages != res.GoodMessages || rep.BadMessages != res.BadMessages ||
		rep.DecidedGood != res.DecidedGood || rep.AvgGoodSends != res.AvgGoodSends {
		t.Fatalf("legacy and scenario paths diverge:\nlegacy: %+v\nreport: %+v", res, rep)
	}
}
