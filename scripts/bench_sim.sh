#!/usr/bin/env sh
# bench_sim.sh — run the engine sweep benchmarks (sparse fast path vs the
# dense sim/ref baseline, the harness parallel variant, the re-platformed
# reactive-protocol sweep, the multi-broadcast traffic tier, the
# protocol-layer BVDeliver hot path, the large-scale tier: the
# 160×160 torus sweep, the 100k-node RGG single-run, and the
# million-node RGG single-run — plus the job-service tier, the
# end-to-end submit/run/aggregate/wait path of internal/jobs behind
# cmd/bftsimd and the sharded lease-protocol variant of the same grid)
# and emit BENCH_sim.json, the
# machine-readable record the CI bench job uploads and the repo checks in
# as the perf trajectory across PRs.
#
# When the checked-in BENCH_sim.json exists, per-benchmark *_vs_prev
# speedups are recorded against it and the run FAILS (the CI gates) if:
#   - BenchmarkSweep45Scenario, BenchmarkRGG100kRun or
#     BenchmarkMultiBroadcast regressed by more than 10%, or
#     BenchmarkRGG1MRun or BenchmarkJobThroughput by more than 15%,
#     or BenchmarkBVDeliver by more than 25% (generous: the op is
#     microseconds, so scheduler noise dominates — the 0.65 vs_prev
#     scare in PR 8's snapshot was exactly such noise), or the
#     executors=1 leg of BenchmarkShardedGridThroughput by more than
#     15% (disk-sensitive like JobThroughput; the absolute ≤1.10×
#     coordinator-overhead gate vs the unsharded run is asserted inside
#     the benchmark itself, so it holds on every run, not just vs the
#     snapshot), in ns/op, or
#   - BenchmarkBVDeliver, BenchmarkRGG100kRun, BenchmarkRGG1MRun,
#     BenchmarkMultiBroadcast, the workers=4 leg of
#     BenchmarkMultiBroadcastParallel, or BenchmarkJobThroughput
#     regressed by more than 10% in allocs/op.
# Allocation gates are machine-independent; they guard the protocol
# layer's zero-alloc delivery contract, the large-scale fast path's
# steady-state reuse (PR 6 took RGG100kRun from ~200k allocs/op to
# ~130), the sharded multi-broadcast fold (PR 9), and the job service's
# per-point spec expansion (PR 9 cut it ~17% by killing the option-
# closure churn).
#
# Usage: scripts/bench_sim.sh [benchtime] [output]
#   benchtime  go test -benchtime value (default 10x: the sweep is
#              deterministic, so fixed iteration counts are comparable)
#   output     output path (default BENCH_sim.json)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="${2:-BENCH_sim.json}"

PREVFLAGS=""
if [ -f BENCH_sim.json ]; then
  cp BENCH_sim.json /tmp/bench_prev.json
  PREVFLAGS="-prev /tmp/bench_prev.json -max-regress BenchmarkSweep45Scenario:1.10,BenchmarkBVDeliver:1.25,BenchmarkBVDeliver:allocs:1.10,BenchmarkRGG100kRun:1.10,BenchmarkRGG100kRun:allocs:1.10,BenchmarkRGG1MRun:1.15,BenchmarkRGG1MRun:allocs:1.10,BenchmarkMultiBroadcast:1.10,BenchmarkMultiBroadcast:allocs:1.10,BenchmarkMultiBroadcastParallel/workers=4:allocs:1.10,BenchmarkJobThroughput:1.15,BenchmarkJobThroughput:allocs:1.10,BenchmarkShardedGridThroughput/executors=1:1.15,BenchmarkShardedGridThroughput/executors=1:allocs:1.10"
fi

go build -o /tmp/benchjson ./cmd/benchjson

# No pipeline: POSIX sh has no pipefail, and a b.Fatal in a later
# benchmark must fail the script even when the earlier result lines
# already parsed cleanly.
RAW=/tmp/bench_raw.txt
run_suite() {
  go test -run '^$' -timeout 1800s \
    -bench 'Benchmark(Sweep45(Sequential|Parallel|DenseRef|Runner|Scenario)|ReactiveSweep|Sweep160Scenario|RGG100kRun|MultiBroadcast|MultiBroadcastParallel|RGG25kMulti)$' \
    -benchmem -benchtime "$BENCHTIME" . > "$RAW"
  # The million-node run is ~3s/op: fixed at -benchtime 1x so the
  # large-scale tier stays a few seconds instead of scaling with the
  # caller's benchtime. The run is deterministic, so one iteration is a
  # comparable sample.
  go test -run '^$' -timeout 1800s \
    -bench 'BenchmarkRGG1MRun$' \
    -benchmem -benchtime 1x . >> "$RAW"
  # The protocol-layer delivery hot path lives in internal/bv; its
  # allocs/op line joins the same document so the allocation gate can
  # guard it.
  go test -run '^$' -timeout 600s \
    -bench 'BenchmarkBVDeliver$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/bv >> "$RAW"
  # The job-service tier: end-to-end submit → checkpointing run →
  # constant-memory aggregation → wait for a 64-point grid, the path
  # every bftsimd job takes — plus the sharded lease-protocol variant
  # of the same grid (local executors pulling 4-point leases), whose
  # coordinator-overhead gate runs inside the benchmark. Gated loosely
  # (15%): the checkpoint fsyncs make both disk-sensitive.
  go test -run '^$' -timeout 600s \
    -bench 'Benchmark(JobThroughput|ShardedGridThroughput)$' \
    -benchmem -benchtime "$BENCHTIME" ./internal/jobs >> "$RAW"
  cat "$RAW" >&2
}

run_suite
# Run-to-run variance on shared machines can exceed the 10% gate (the
# untouched DenseRef baseline has drifted >20% between runs of this
# container); a single retry separates persistent regressions from
# noise while keeping real >10% slowdowns fatal.
if ! /tmp/benchjson $PREVFLAGS < "$RAW" > "$OUT"; then
  echo "bench_sim.sh: regression gate tripped; rerunning once to rule out noise" >&2
  run_suite
  /tmp/benchjson $PREVFLAGS < "$RAW" > "$OUT"
fi
echo "wrote $OUT" >&2
