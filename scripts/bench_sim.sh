#!/usr/bin/env sh
# bench_sim.sh — run the engine sweep benchmarks (sparse fast path vs the
# dense sim/ref baseline, plus the harness parallel variant) and emit
# BENCH_sim.json, the machine-readable record the CI bench job uploads
# and the repo checks in as the perf trajectory across PRs.
#
# Usage: scripts/bench_sim.sh [benchtime] [output]
#   benchtime  go test -benchtime value (default 10x: the sweep is
#              deterministic, so fixed iteration counts are comparable)
#   output     output path (default BENCH_sim.json)
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-10x}"
OUT="${2:-BENCH_sim.json}"

go build -o /tmp/benchjson ./cmd/benchjson
go test -run '^$' \
  -bench 'BenchmarkSweep45(Sequential|Parallel|DenseRef|Runner|Scenario)$' \
  -benchmem -benchtime "$BENCHTIME" . | tee /dev/stderr | /tmp/benchjson > "$OUT"
echo "wrote $OUT" >&2
