#!/usr/bin/env sh
# smoke_bftsimd.sh — end-to-end smoke test of the bftsimd daemon over a
# real socket: boot it on a free port, submit a grid job over HTTP,
# stream its NDJSON results to the summary line, cancel a second
# long-running job, shard a grid across two separate pull-worker
# processes (killing one mid-grid to force a lease re-issue) and require
# the sharded aggregate to be byte-identical to the single-daemon run,
# then SIGTERM the daemon and require a clean drain (exit 0, drain
# notice in the log). The CI daemon-smoke job runs this; it needs only
# sh, curl, cmp and the go toolchain.
set -eu

cd "$(dirname "$0")/.."

DIR="$(mktemp -d)"
LOG="$DIR/daemon.log"
PID=""
W1=""
W2=""
cleanup() {
  [ -n "$W1" ] && kill -9 "$W1" 2>/dev/null || true
  [ -n "$W2" ] && kill -9 "$W2" 2>/dev/null || true
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/bftsimd" ./cmd/bftsimd

"$DIR/bftsimd" -addr 127.0.0.1:0 -dir "$DIR/jobs" -checkpoint-every 1 >"$LOG" 2>&1 &
PID=$!

# The daemon announces its resolved address on stdout.
ADDR=""
i=0
while [ $i -lt 100 ]; do
  ADDR="$(sed -n 's/^bftsimd listening on \([^ ]*\).*/\1/p' "$LOG")"
  [ -n "$ADDR" ] && break
  kill -0 "$PID" 2>/dev/null || { echo "smoke_bftsimd: daemon died at boot" >&2; cat "$LOG" >&2; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "smoke_bftsimd: daemon never announced its address" >&2; cat "$LOG" >&2; exit 1; }
BASE="http://$ADDR"

curl -fsS "$BASE/healthz" >/dev/null

job_id() {
  sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1
}

# A small job, streamed to completion.
ID="$(curl -fsS -X POST --data-binary '{
  "base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
            "adversary": "random", "density": 0.08, "seed": 41},
  "seeds": 6
}' "$BASE/v1/jobs" | job_id)"
[ -n "$ID" ] || { echo "smoke_bftsimd: submit returned no job id" >&2; exit 1; }

STREAM="$(curl -fsS "$BASE/v1/jobs/$ID/results")"
printf '%s\n' "$STREAM" | grep -q '"summary"' || {
  echo "smoke_bftsimd: results stream missing its summary line" >&2
  printf '%s\n' "$STREAM" >&2
  exit 1
}
printf '%s\n' "$STREAM" | grep -q '"state":"done"' || {
  echo "smoke_bftsimd: streamed job did not finish" >&2
  printf '%s\n' "$STREAM" >&2
  exit 1
}
curl -fsS "$BASE/v1/jobs" | grep -q "\"$ID\"" || {
  echo "smoke_bftsimd: job listing lost the job" >&2
  exit 1
}

# A long job (500 points), cancelled while in flight.
ID2="$(curl -fsS -X POST --data-binary '{
  "base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
            "adversary": "random", "density": 0.08, "seed": 43},
  "seeds": 500
}' "$BASE/v1/jobs" | job_id)"
curl -fsS -X POST "$BASE/v1/jobs/$ID2/cancel" >/dev/null
# Cancellation is asynchronous: the runner finalizes the job after its
# in-flight points unwind. Poll the status until it lands.
i=0
while [ $i -lt 100 ]; do
  curl -fsS "$BASE/v1/jobs/$ID2" | grep -q '"state": "cancelled"' && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 100 ] || {
  echo "smoke_bftsimd: cancelled job never reached the cancelled state" >&2
  curl -fsS "$BASE/v1/jobs/$ID2" >&2 || true
  exit 1
}

# A malformed spec must be a client error, not an enqueue.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary '{"base": {"topology": {"Kind": "warp"}}}' "$BASE/v1/jobs")"
[ "$CODE" = "400" ] || { echo "smoke_bftsimd: bad spec returned $CODE, want 400" >&2; exit 1; }

# --- Horizontal sharding: one grid, two pull-worker processes. ---
# The same grid run twice: once unsharded on the daemon's own pool (the
# control), once sharded across two external workers with one worker
# kill -9'd mid-grid — its expired lease must re-issue and the final
# aggregate must be byte-identical to the control.
GRID='{
  "base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
            "adversary": "random", "density": 0.08, "seed": 47},
  "seeds": 200
}'

CID="$(curl -fsS -X POST --data-binary "$GRID" "$BASE/v1/jobs" | job_id)"
[ -n "$CID" ] || { echo "smoke_bftsimd: control submit returned no job id" >&2; exit 1; }
i=0
while [ $i -lt 600 ]; do
  curl -fsS "$BASE/v1/jobs/$CID" | grep -q '"state": "done"' && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 600 ] || { echo "smoke_bftsimd: control job never finished" >&2; exit 1; }
curl -fsS "$BASE/v1/jobs/$CID/aggregate" >"$DIR/control.json"

SID="$(curl -fsS -X POST --data-binary "$GRID" \
  "$BASE/v1/jobs?sharded=1&lease_points=4&lease_ttl=2s" | job_id)"
[ -n "$SID" ] || { echo "smoke_bftsimd: sharded submit returned no job id" >&2; exit 1; }

"$DIR/bftsimd" -worker -coordinator "$BASE" -worker-id w1 -poll 50ms >"$DIR/w1.log" 2>&1 &
W1=$!
"$DIR/bftsimd" -worker -coordinator "$BASE" -worker-id w2 -poll 50ms >"$DIR/w2.log" 2>&1 &
W2=$!

# Kill worker 1 as soon as the grid has made progress but is not done:
# whatever lease it holds is abandoned and must re-issue after its 2s
# TTL for the job to ever finish.
i=0
while [ $i -lt 600 ]; do
  DONE="$(curl -fsS "$BASE/v1/jobs/$SID" | sed -n 's/.*"done": \([0-9]*\).*/\1/p' | head -n 1)"
  [ "${DONE:-0}" -gt 0 ] && break
  sleep 0.05
  i=$((i + 1))
done
[ $i -lt 600 ] || { echo "smoke_bftsimd: sharded job made no progress" >&2; cat "$DIR/w1.log" "$DIR/w2.log" >&2; exit 1; }
kill -9 "$W1" 2>/dev/null || true
W1=""

i=0
while [ $i -lt 600 ]; do
  curl -fsS "$BASE/v1/jobs/$SID" | grep -q '"state": "done"' && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 600 ] || {
  echo "smoke_bftsimd: sharded job never finished after the worker kill" >&2
  curl -fsS "$BASE/v1/jobs/$SID" >&2 || true
  cat "$DIR/w2.log" >&2
  exit 1
}
curl -fsS "$BASE/v1/jobs/$SID/aggregate" >"$DIR/sharded.json"
cmp -s "$DIR/control.json" "$DIR/sharded.json" || {
  echo "smoke_bftsimd: sharded aggregate diverged from the single-daemon run" >&2
  diff "$DIR/control.json" "$DIR/sharded.json" >&2 || true
  exit 1
}

# The surviving worker drains cleanly on SIGTERM.
kill -TERM "$W2"
RC=0
wait "$W2" || RC=$?
W2=""
[ "$RC" = "0" ] || { echo "smoke_bftsimd: worker exited $RC after SIGTERM" >&2; cat "$DIR/w2.log" >&2; exit 1; }
grep -q "draining" "$DIR/w2.log" || {
  echo "smoke_bftsimd: no worker drain notice" >&2
  cat "$DIR/w2.log" >&2
  exit 1
}

# Graceful drain: SIGTERM, clean exit, drain notice.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = "0" ] || { echo "smoke_bftsimd: daemon exited $RC after SIGTERM" >&2; cat "$LOG" >&2; exit 1; }
grep -q "bftsimd draining" "$LOG" || {
  echo "smoke_bftsimd: no drain notice in the log" >&2
  cat "$LOG" >&2
  exit 1
}

echo "smoke_bftsimd: OK"
