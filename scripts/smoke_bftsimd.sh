#!/usr/bin/env sh
# smoke_bftsimd.sh — end-to-end smoke test of the bftsimd daemon over a
# real socket: boot it on a free port, submit a grid job over HTTP,
# stream its NDJSON results to the summary line, cancel a second
# long-running job, then SIGTERM the daemon and require a clean drain
# (exit 0, drain notice in the log). The CI daemon-smoke job runs this;
# it needs only sh, curl and the go toolchain.
set -eu

cd "$(dirname "$0")/.."

DIR="$(mktemp -d)"
LOG="$DIR/daemon.log"
PID=""
cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/bftsimd" ./cmd/bftsimd

"$DIR/bftsimd" -addr 127.0.0.1:0 -dir "$DIR/jobs" -checkpoint-every 1 >"$LOG" 2>&1 &
PID=$!

# The daemon announces its resolved address on stdout.
ADDR=""
i=0
while [ $i -lt 100 ]; do
  ADDR="$(sed -n 's/^bftsimd listening on \([^ ]*\).*/\1/p' "$LOG")"
  [ -n "$ADDR" ] && break
  kill -0 "$PID" 2>/dev/null || { echo "smoke_bftsimd: daemon died at boot" >&2; cat "$LOG" >&2; exit 1; }
  sleep 0.1
  i=$((i + 1))
done
[ -n "$ADDR" ] || { echo "smoke_bftsimd: daemon never announced its address" >&2; cat "$LOG" >&2; exit 1; }
BASE="http://$ADDR"

curl -fsS "$BASE/healthz" >/dev/null

job_id() {
  sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1
}

# A small job, streamed to completion.
ID="$(curl -fsS -X POST --data-binary '{
  "base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
            "adversary": "random", "density": 0.08, "seed": 41},
  "seeds": 6
}' "$BASE/v1/jobs" | job_id)"
[ -n "$ID" ] || { echo "smoke_bftsimd: submit returned no job id" >&2; exit 1; }

STREAM="$(curl -fsS "$BASE/v1/jobs/$ID/results")"
printf '%s\n' "$STREAM" | grep -q '"summary"' || {
  echo "smoke_bftsimd: results stream missing its summary line" >&2
  printf '%s\n' "$STREAM" >&2
  exit 1
}
printf '%s\n' "$STREAM" | grep -q '"state":"done"' || {
  echo "smoke_bftsimd: streamed job did not finish" >&2
  printf '%s\n' "$STREAM" >&2
  exit 1
}
curl -fsS "$BASE/v1/jobs" | grep -q "\"$ID\"" || {
  echo "smoke_bftsimd: job listing lost the job" >&2
  exit 1
}

# A long job (500 points), cancelled while in flight.
ID2="$(curl -fsS -X POST --data-binary '{
  "base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
            "adversary": "random", "density": 0.08, "seed": 43},
  "seeds": 500
}' "$BASE/v1/jobs" | job_id)"
curl -fsS -X POST "$BASE/v1/jobs/$ID2/cancel" >/dev/null
# Cancellation is asynchronous: the runner finalizes the job after its
# in-flight points unwind. Poll the status until it lands.
i=0
while [ $i -lt 100 ]; do
  curl -fsS "$BASE/v1/jobs/$ID2" | grep -q '"state": "cancelled"' && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 100 ] || {
  echo "smoke_bftsimd: cancelled job never reached the cancelled state" >&2
  curl -fsS "$BASE/v1/jobs/$ID2" >&2 || true
  exit 1
}

# A malformed spec must be a client error, not an enqueue.
CODE="$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  --data-binary '{"base": {"topology": {"Kind": "warp"}}}' "$BASE/v1/jobs")"
[ "$CODE" = "400" ] || { echo "smoke_bftsimd: bad spec returned $CODE, want 400" >&2; exit 1; }

# Graceful drain: SIGTERM, clean exit, drain notice.
kill -TERM "$PID"
RC=0
wait "$PID" || RC=$?
PID=""
[ "$RC" = "0" ] || { echo "smoke_bftsimd: daemon exited $RC after SIGTERM" >&2; cat "$LOG" >&2; exit 1; }
grep -q "bftsimd draining" "$LOG" || {
  echo "smoke_bftsimd: no drain notice in the log" >&2
  cat "$LOG" >&2
  exit 1
}

echo "smoke_bftsimd: OK"
