package bftbcast

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"bftbcast/internal/stats"
)

// ErrBadSpec rejects a malformed scenario-grid document: unknown
// protocol/adversary/policy names, axis values that contradict the
// protocol, or JSON that does not decode. Every rejection from
// DecodeGridSpec and GridSpec.Validate wraps it (possibly alongside one
// of the Scenario validation errors), so the jobs layer can map any
// submission failure to a client error with errors.Is.
var ErrBadSpec = errors.New("bftbcast: bad scenario spec")

// ScenarioSpec is the JSON-codable description of one Scenario: the
// topology by name, the fault model, the protocol and adversary by
// name, and the run limits. It captures exactly the scenario space of
// cmd/bftsim's flags that is topology-portable (the torus-only
// constructions sandwich/figure2 stay CLI-only), and it is the base
// point of a GridSpec.
type ScenarioSpec struct {
	// Topology selects the network by name: kind "torus" (default),
	// "grid" or "rgg", sized by W/H/R (grids) or Nodes+Seed (rgg).
	Topology TopologySpec `json:"topology"`
	// T and MF are the fault model; R comes from the topology.
	T  int `json:"t"`
	MF int `json:"mf"`
	// Protocol is "b" (default), "bheter" (torus only), "koo", "full"
	// (requires M) or "reactive".
	Protocol string `json:"protocol,omitempty"`
	// M is the good-node budget of the "full" protocol.
	M int `json:"m,omitempty"`
	// Adversary is "none" (default) or "random" (RandomPlacement with
	// Density plus the budget-aware corruptor for threshold protocols).
	Adversary string  `json:"adversary,omitempty"`
	Density   float64 `json:"density,omitempty"`
	// Policy, MMax and PayloadBits tune the reactive protocol
	// ("disrupt" default, "forge", "nackspam", "mixed").
	Policy      string `json:"policy,omitempty"`
	MMax        int    `json:"mmax,omitempty"`
	PayloadBits int    `json:"payload_bits,omitempty"`
	// Broadcasts >= 2 enables multi-broadcast traffic (threshold only).
	Broadcasts int `json:"broadcasts,omitempty"`
	// MaxSlots and RunWorkers are the Scenario run limits.
	MaxSlots   int `json:"max_slots,omitempty"`
	RunWorkers int `json:"run_workers,omitempty"`
	// Seed drives the engine randomness, the adversary placement and —
	// through deterministic derivation — every replica of a GridSpec.
	Seed uint64 `json:"seed,omitempty"`
}

// Scenario builds the validated Scenario the spec describes. The
// returned scenario owns a freshly built topology; grids that expand
// many points share one topology instead (see GridSpec.Scenarios).
func (s *ScenarioSpec) Scenario() (*Scenario, error) {
	tp, err := NewTopology(s.Topology)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return s.scenarioOn(tp, s.T, s.MF, s.Density, s.Broadcasts, s.Seed)
}

// scenarioOn builds the spec's scenario on an already-built topology
// with the axis-varying fields overridden — the one constructor both
// the single-Scenario and the grid-expansion paths funnel through. It
// fills the Scenario struct directly instead of going through the
// functional options: grid expansion calls this once per point, and
// the ~10 option closures per point were the dominant allocation churn
// of job submission (BenchmarkJobThroughput).
func (s *ScenarioSpec) scenarioOn(tp Topology, t, mf int, density float64, broadcasts int, seed uint64) (*Scenario, error) {
	params := Params{R: tp.Range(), T: t, MF: mf}
	if err := params.Validate(); err != nil {
		// Checked before the protocol constructors see the params, so a
		// bad axis value classifies as ErrBadParams, not as whichever
		// constructor tripped over it first.
		return nil, fmt.Errorf("%w: %w: %w", ErrBadSpec, ErrBadParams, err)
	}
	sc := &Scenario{
		Topo:       tp,
		Params:     params,
		Seed:       seed,
		MaxSlots:   s.MaxSlots,
		RunWorkers: s.RunWorkers,
		Broadcasts: broadcasts,
	}

	reactive := s.Protocol == "reactive"
	if reactive {
		policy, err := reactivePolicy(s.Policy)
		if err != nil {
			return nil, err
		}
		sc.Protocol = ProtocolReactive
		sc.Reactive = ReactiveSpec{MMax: s.MMax, PayloadBits: s.PayloadBits, Policy: policy}
	} else {
		spec, err := s.thresholdSpec(tp, params)
		if err != nil {
			return nil, err
		}
		sc.Spec = spec
	}

	switch s.Adversary {
	case "", "none":
	case "random":
		sc.Placement = RandomPlacement{T: t, Density: density, Seed: seed}
		if !reactive {
			// The reactive adversary acts through Policy, not a jamming
			// strategy; it only needs the placement. Strategies are
			// single-run: every expanded point gets its own corruptor.
			sc.Strategy = NewCorruptor()
		}
	default:
		return nil, fmt.Errorf("%w: unknown adversary %q (want none or random)", ErrBadSpec, s.Adversary)
	}

	// validate fills the remaining defaults in place, exactly as
	// NewScenario would on the option-built equivalent.
	if err := sc.validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return sc, nil
}

// thresholdSpec resolves the spec's threshold-protocol name.
func (s *ScenarioSpec) thresholdSpec(tp Topology, params Params) (Spec, error) {
	switch s.Protocol {
	case "", "b":
		spec, err := NewProtocolB(params)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return spec, nil
	case "bheter":
		tor, ok := tp.(*Torus)
		if !ok {
			return Spec{}, fmt.Errorf("%w: protocol bheter is a torus construction (got topology %q)", ErrBadSpec, s.Topology.Kind)
		}
		spec, err := NewBheter(params, tor, Cross{Center: tor.ID(0, 0), HalfWidth: params.R})
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return spec, nil
	case "koo":
		spec, err := NewKooBaseline(params)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return spec, nil
	case "full":
		if s.M <= 0 {
			return Spec{}, fmt.Errorf("%w: protocol full needs m > 0", ErrBadSpec)
		}
		spec, err := NewFullBudget(params, s.M)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %w", ErrBadSpec, err)
		}
		return spec, nil
	default:
		return Spec{}, fmt.Errorf("%w: unknown protocol %q (want b, bheter, koo, full or reactive)", ErrBadSpec, s.Protocol)
	}
}

// reactivePolicy resolves the reactive attack-policy name.
func reactivePolicy(name string) (AttackPolicy, error) {
	switch name {
	case "", "disrupt":
		return PolicyDisrupt, nil
	case "forge":
		return PolicyForge, nil
	case "nackspam":
		return PolicyNackSpam, nil
	case "mixed":
		return PolicyMixed, nil
	default:
		return 0, fmt.Errorf("%w: unknown policy %q (want disrupt, forge, nackspam or mixed)", ErrBadSpec, name)
	}
}

// GridSpec is the JSON-codable description of a parameter sweep: a base
// ScenarioSpec plus axes. The grid expands to the cartesian product of
// the axes in a fixed order — seed replicas outermost, then T, MF,
// Density, Broadcasts innermost — so a spec document always names the
// same point list, which is what makes checkpointed jobs resumable: a
// restarted daemon re-expands the spec and continues at the recorded
// point index.
//
// Replica seeds are derived deterministically from Base.Seed (replica 0
// keeps Base.Seed itself, so a one-replica grid is exactly the base
// scenario); each point's scenario seed also drives its adversary
// placement.
type GridSpec struct {
	Base ScenarioSpec `json:"base"`
	// Seeds is the number of seed replicas (0 and 1 both mean one).
	Seeds int `json:"seeds,omitempty"`
	// The axes; an empty axis holds the base value fixed.
	T          []int     `json:"t,omitempty"`
	MF         []int     `json:"mf,omitempty"`
	Density    []float64 `json:"density,omitempty"`
	Broadcasts []int     `json:"broadcasts,omitempty"`
}

// DecodeGridSpec parses and validates a JSON grid document. Unknown
// fields are rejected — a misspelled axis silently fixing a parameter
// is exactly the failure mode a validating decoder exists to prevent.
func DecodeGridSpec(data []byte) (*GridSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	g := &GridSpec{}
	if err := dec.Decode(g); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Encode renders the grid as JSON, the inverse of DecodeGridSpec.
func (g *GridSpec) Encode() ([]byte, error) {
	return json.Marshal(g)
}

// NPoints returns the number of points the grid expands to.
func (g *GridSpec) NPoints() int {
	n := g.replicas()
	for _, axis := range []int{len(g.T), len(g.MF), len(g.Density), len(g.Broadcasts)} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

func (g *GridSpec) replicas() int {
	if g.Seeds <= 1 {
		return 1
	}
	return g.Seeds
}

// Validate checks the grid without expanding every replica: the base
// spec and each unique axis combination are built once, so a malformed
// corner of the grid is reported at submit time with a typed error
// (ErrBadSpec or a Scenario validation error), not after hours of
// completed points.
func (g *GridSpec) Validate() error {
	if g.Seeds < 0 {
		return fmt.Errorf("%w: seeds %d must be >= 0", ErrBadSpec, g.Seeds)
	}
	tp, err := NewTopology(g.Base.Topology)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return g.forEachCombo(func(t, mf int, density float64, broadcasts int) error {
		_, err := g.Base.scenarioOn(tp, t, mf, density, broadcasts, g.Base.Seed)
		return err
	})
}

// Scenarios expands the grid's points [lo, hi) in the documented
// deterministic order (the full list is Scenarios(0, g.NPoints())).
// All points share one freshly built topology (and therefore one
// compiled plan across all sweep workers); each point derives from the
// base via the axis overrides and its replica seed. Expansion itself
// validates every built point (scenarioOn rejects malformed corners
// with the same typed errors Validate reports), so no separate Validate
// pass runs here — checkpoint resume re-expands grids constantly, and
// the double expansion used to double the submission allocation bill.
func (g *GridSpec) Scenarios(lo, hi int) ([]*Scenario, error) {
	tp, err := NewTopology(g.Base.Topology)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadSpec, err)
	}
	return g.ScenariosOn(tp, lo, hi)
}

// ScenariosOn is Scenarios on a caller-provided topology, so repeated
// range expansions of one grid (the sharded lease protocol pulls a grid
// range by range) share a single topology and its compiled plan instead
// of rebuilding both per range. Only the points inside [lo, hi) are
// built: replica blocks entirely outside the range are skipped without
// walking their axis combinations, so expanding a narrow window of a
// huge grid allocates O(hi-lo), not O(NPoints) (replica-seed derivation
// is O(replicas) cheap RNG draws either way).
func (g *GridSpec) ScenariosOn(tp Topology, lo, hi int) ([]*Scenario, error) {
	if g.Seeds < 0 {
		return nil, fmt.Errorf("%w: seeds %d must be >= 0", ErrBadSpec, g.Seeds)
	}
	total := g.NPoints()
	if lo < 0 || hi > total || lo > hi {
		return nil, fmt.Errorf("%w: point range [%d,%d) outside grid of %d points", ErrBadSpec, lo, hi, total)
	}
	seeds := deriveSeeds(g.Base.Seed, g.replicas())
	perReplica := total / len(seeds)
	out := make([]*Scenario, 0, hi-lo)
	for ri, seed := range seeds {
		base := ri * perReplica
		if base+perReplica <= lo || base >= hi {
			continue
		}
		idx := base
		err := g.forEachCombo(func(t, mf int, density float64, broadcasts int) error {
			i := idx
			idx++
			if i < lo || i >= hi {
				return nil
			}
			sc, err := g.Base.scenarioOn(tp, t, mf, density, broadcasts, seed)
			if err != nil {
				return err
			}
			out = append(out, sc)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// forEachCombo walks the axis combinations in the fixed expansion order
// (T, then MF, then Density, then Broadcasts), substituting the base
// value for empty axes.
func (g *GridSpec) forEachCombo(fn func(t, mf int, density float64, broadcasts int) error) error {
	ts := g.T
	if len(ts) == 0 {
		ts = []int{g.Base.T}
	}
	mfs := g.MF
	if len(mfs) == 0 {
		mfs = []int{g.Base.MF}
	}
	densities := g.Density
	if len(densities) == 0 {
		densities = []float64{g.Base.Density}
	}
	broadcasts := g.Broadcasts
	if len(broadcasts) == 0 {
		broadcasts = []int{g.Base.Broadcasts}
	}
	for _, t := range ts {
		for _, mf := range mfs {
			for _, d := range densities {
				for _, b := range broadcasts {
					if err := fn(t, mf, d, b); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// deriveSeeds expands a base seed into n replica seeds: replica 0 is
// the base itself, later replicas are drawn from the repository's
// deterministic RNG seeded with the base. Derivation depends only on
// (base, n), so a re-expanded grid reproduces its points exactly.
func deriveSeeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	if n == 0 {
		return out
	}
	out[0] = base
	rng := stats.NewRNG(base)
	for i := 1; i < n; i++ {
		out[i] = rng.Uint64()
	}
	return out
}
