package bftbcast_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"bftbcast"
)

// TestGridSpecDecodeValidate pins the decoder's typed-error contract:
// malformed documents are rejected with ErrBadSpec at decode time, and
// scenario-level contradictions surface the scenario's typed error too.
func TestGridSpecDecodeValidate(t *testing.T) {
	good := []byte(`{
		"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
		          "adversary": "random", "density": 0.1, "seed": 7},
		"seeds": 3, "mf": [1, 2]
	}`)
	g, err := bftbcast.DecodeGridSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.NPoints(); got != 6 {
		t.Fatalf("NPoints = %d, want 6 (3 seeds x 2 mf)", got)
	}

	bad := []struct {
		name string
		doc  string
		want error
	}{
		{"not json", `{`, bftbcast.ErrBadSpec},
		{"unknown field", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}}, "densty": [0.1]}`, bftbcast.ErrBadSpec},
		{"unknown topology", `{"base": {"topology": {"Kind": "hypercube"}}}`, bftbcast.ErrBadSpec},
		{"unknown protocol", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "protocol": "warp"}}`, bftbcast.ErrBadSpec},
		{"unknown adversary", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "adversary": "stripe"}}`, bftbcast.ErrBadSpec},
		{"unknown policy", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "protocol": "reactive", "policy": "nuke"}}`, bftbcast.ErrBadSpec},
		{"full without m", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "protocol": "full"}}`, bftbcast.ErrBadSpec},
		{"bheter off torus", `{"base": {"topology": {"Kind": "rgg", "Nodes": 100, "Seed": 1}, "t": 1, "protocol": "bheter"}}`, bftbcast.ErrBadSpec},
		{"negative seeds", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}}, "seeds": -1}`, bftbcast.ErrBadSpec},
		{"negative mf axis", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1}, "mf": [-3]}`, bftbcast.ErrBadParams},
		{"t axis too large", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "mf": 1}, "t": [99]}`, bftbcast.ErrBadParams},
		{"reactive x broadcasts", `{"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2, "protocol": "reactive"}, "broadcasts": [4]}`, bftbcast.ErrBadBroadcasts},
	}
	for _, tc := range bad {
		if _, err := bftbcast.DecodeGridSpec([]byte(tc.doc)); !errors.Is(err, tc.want) {
			t.Errorf("%s: error = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

// TestGridSpecRoundTrip requires Encode/Decode be lossless.
func TestGridSpecRoundTrip(t *testing.T) {
	g := &bftbcast.GridSpec{
		Base: bftbcast.ScenarioSpec{
			Topology: bftbcast.TopologySpec{Kind: "grid", W: 16, H: 16, R: 2},
			T:        1, MF: 2, Protocol: "koo", Adversary: "random", Density: 0.08, Seed: 42,
		},
		Seeds: 4,
		T:     []int{1, 2},
	}
	data, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := bftbcast.DecodeGridSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, back) {
		t.Fatalf("round trip changed the spec:\n%+v\nvs\n%+v", g, back)
	}
}

// TestGridSpecExpansion pins the deterministic expansion contract: the
// point order is fixed, replica 0 keeps the base seed, replicas get
// distinct derived seeds that also drive the adversary placement, all
// points share one topology, and re-expanding yields identical points.
func TestGridSpecExpansion(t *testing.T) {
	doc := []byte(`{
		"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
		          "adversary": "random", "density": 0.1, "seed": 9},
		"seeds": 3, "mf": [2, 5]
	}`)
	g, err := bftbcast.DecodeGridSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := g.Scenarios(0, g.NPoints())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != g.NPoints() || len(pts) != 6 {
		t.Fatalf("expanded %d points, want %d", len(pts), g.NPoints())
	}
	if pts[0].Seed != 9 {
		t.Fatalf("replica 0 seed = %d, want the base seed 9", pts[0].Seed)
	}
	// Fixed order: seeds outermost, MF innermost.
	if pts[0].Params.MF != 2 || pts[1].Params.MF != 5 {
		t.Fatalf("axis order: got MF %d, %d, want 2, 5", pts[0].Params.MF, pts[1].Params.MF)
	}
	if pts[0].Seed == pts[2].Seed || pts[2].Seed == pts[4].Seed {
		t.Fatal("replica seeds are not distinct")
	}
	if pts[2].Seed != pts[3].Seed {
		t.Fatal("points of one replica must share its derived seed")
	}
	for i, pt := range pts {
		if pt.Topo != pts[0].Topo {
			t.Fatalf("point %d does not share the grid's topology instance", i)
		}
		placement, ok := pt.Placement.(bftbcast.RandomPlacement)
		if !ok {
			t.Fatalf("point %d placement %T, want RandomPlacement", i, pt.Placement)
		}
		if placement.Seed != pt.Seed {
			t.Fatalf("point %d placement seed %d != scenario seed %d", i, placement.Seed, pt.Seed)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Strategy == pts[i-1].Strategy {
			t.Fatalf("points %d and %d share a strategy; strategies are single-run", i-1, i)
		}
	}

	again, err := g.Scenarios(0, g.NPoints())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if pts[i].Seed != again[i].Seed || pts[i].Params != again[i].Params {
			t.Fatalf("re-expansion diverged at point %d", i)
		}
	}
}

// TestGridSpecRunsDeterministically runs a small expanded grid through a
// Sweep twice and requires identical reports — the idempotence that
// makes checkpointed points safe to skip on resume.
func TestGridSpecRunsDeterministically(t *testing.T) {
	doc := []byte(`{
		"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
		          "adversary": "random", "density": 0.08, "seed": 3},
		"seeds": 2, "t": [1, 2]
	}`)
	g, err := bftbcast.DecodeGridSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []bftbcast.SweepPoint {
		scenarios, err := g.Scenarios(0, g.NPoints())
		if err != nil {
			t.Fatal(err)
		}
		pts, err := (&bftbcast.Sweep{Workers: 2, Scenarios: scenarios}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	for i := range a {
		if !reflect.DeepEqual(a[i].Report, b[i].Report) {
			t.Fatalf("point %d not reproducible across expansions", i)
		}
	}
}

// TestScenarioSpecReactive checks the reactive leg of the codec builds
// a runnable scenario (placement without strategy, policy resolved).
func TestScenarioSpecReactive(t *testing.T) {
	spec := &bftbcast.ScenarioSpec{
		Topology: bftbcast.TopologySpec{Kind: "torus", W: 15, H: 15, R: 2},
		T:        1, MF: 3, Protocol: "reactive", Policy: "forge",
		Adversary: "random", Density: 0.05, Seed: 2,
	}
	sc, err := spec.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Protocol != bftbcast.ProtocolReactive || sc.Strategy != nil {
		t.Fatalf("reactive scenario misbuilt: protocol %q, strategy %v", sc.Protocol, sc.Strategy)
	}
	rep, err := bftbcast.EngineFast.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reactive == nil {
		t.Fatal("reactive run lost its Report extension")
	}
}

// TestScenariosRange pins the range-expansion contract the sharded
// lease protocol leans on: Scenarios(lo, hi) equals the [lo, hi) slice
// of the full expansion for every cut, range expansion on a shared
// topology reuses that topology across calls, and out-of-range windows
// are rejected with the typed spec error.
func TestScenariosRange(t *testing.T) {
	doc := []byte(`{
		"base": {"topology": {"Kind": "torus", "W": 15, "H": 15, "R": 2}, "t": 1, "mf": 2,
		          "adversary": "random", "density": 0.1, "seed": 13},
		"seeds": 3, "t": [1, 2], "mf": [2, 4]
	}`)
	g, err := bftbcast.DecodeGridSpec(doc)
	if err != nil {
		t.Fatal(err)
	}
	total := g.NPoints() // 12
	full, err := g.Scenarios(0, total)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != total {
		t.Fatalf("full expansion has %d points, want %d", len(full), total)
	}
	tp, err := bftbcast.NewTopology(g.Base.Topology)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo <= total; lo++ {
		for hi := lo; hi <= total; hi++ {
			window, err := g.ScenariosOn(tp, lo, hi)
			if err != nil {
				t.Fatalf("ScenariosOn(%d, %d): %v", lo, hi, err)
			}
			if len(window) != hi-lo {
				t.Fatalf("ScenariosOn(%d, %d) built %d points", lo, hi, len(window))
			}
			for i, sc := range window {
				want := full[lo+i]
				if sc.Seed != want.Seed || sc.Params != want.Params || sc.Broadcasts != want.Broadcasts {
					t.Fatalf("window [%d,%d) point %d diverges from full expansion: seed %d/%d params %+v/%+v",
						lo, hi, i, sc.Seed, want.Seed, sc.Params, want.Params)
				}
				if sc.Topo != tp {
					t.Fatalf("window point %d does not share the provided topology", i)
				}
			}
		}
	}
	for _, bad := range [][2]int{{-1, 2}, {0, total + 1}, {5, 4}} {
		if _, err := g.Scenarios(bad[0], bad[1]); !errors.Is(err, bftbcast.ErrBadSpec) {
			t.Fatalf("Scenarios(%d, %d): err = %v, want ErrBadSpec", bad[0], bad[1], err)
		}
	}
}
