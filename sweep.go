package bftbcast

import (
	"context"
	"fmt"
	"runtime"

	"bftbcast/internal/pool"
)

// SweepPoint is the outcome of one Scenario of a Sweep. Exactly one of
// Report and Err is non-nil.
type SweepPoint struct {
	// Index is the point's position in Sweep.Scenarios.
	Index    int
	Scenario *Scenario
	Report   *Report
	Err      error
}

// Sweep runs a list of Scenarios through one Engine on the
// deterministic worker pool the experiment harness uses, streaming the
// results in scenario order. Because every Scenario carries its own
// seeds, the reports are identical for any worker count; only the
// wall-clock time changes.
//
//	sweep := bftbcast.Sweep{Workers: runtime.NumCPU(), Scenarios: points}
//	for pt := range sweep.Stream(ctx) {
//		...
//	}
type Sweep struct {
	// Engine executes the points; nil means EngineFast.
	Engine Engine
	// Workers bounds the worker pool (<= 0 means runtime.NumCPU(), 1
	// runs sequentially).
	Workers int
	// Scenarios are the sweep points, streamed back in this order.
	Scenarios []*Scenario
	// Buffer, when > 0, caps the Stream channel at that many undrained
	// points instead of the default whole-sweep buffer: a slow consumer
	// then back-pressures the emitter (computation keeps running; only
	// completed Reports queue up), so a long-running sweep holds
	// O(Buffer + Workers) completed Reports instead of O(len(Scenarios))
	// — the mode the bftsimd job daemon runs in. Bounded streams trade
	// away the abandon-safety of the default: walking away from the
	// channel without cancelling ctx would park the emitter forever, so
	// in bounded mode abandon only after cancelling ctx (the emitter
	// then drops undelivered points and shuts down cleanly).
	Buffer int
}

// workerPinned is implemented by engines that can hand out a dedicated
// per-worker instance owning reusable run state. Sweep pins one instance
// per pool worker, so a sweep never loses its warmed engine state to
// pool churn and every point runs on the same worker's allocations.
type workerPinned interface {
	pinned() Engine
}

// Stream launches the sweep and returns a channel that yields one
// SweepPoint per Scenario, in scenario order, each as soon as it (and
// every earlier point) has finished. By default the channel is buffered
// for the whole sweep and closes after the last point, so abandoning it
// leaks nothing; cancelling ctx makes the remaining points fail fast
// with ctx.Err(). Setting Buffer bounds the channel instead (see its
// doc for the abandonment contract in that mode).
//
// Engines that support it (EngineFast) are pinned per worker: each pool
// worker runs its points on a private reusable engine, while the
// topology-derived artifacts (the compiled plan) stay shared across all
// workers. Reports are identical for any worker count either way.
func (s *Sweep) Stream(ctx context.Context) <-chan SweepPoint {
	if ctx == nil {
		ctx = context.Background()
	}
	eng := s.Engine
	if eng == nil {
		eng = EngineFast
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if len(s.Scenarios) < workers {
		// Pinned engines are warmed per worker; never build more of them
		// than there are points to run (min 1 keeps the pool well-formed
		// for an empty sweep).
		workers = len(s.Scenarios)
		if workers < 1 {
			workers = 1
		}
	}
	perWorker := make([]Engine, workers)
	for w := range perWorker {
		if p, ok := eng.(workerPinned); ok {
			perWorker[w] = p.pinned()
		} else {
			perWorker[w] = eng
		}
	}
	scenarios := s.Scenarios
	points := make([]SweepPoint, len(scenarios))
	buf := len(scenarios)
	bounded := s.Buffer > 0 && s.Buffer < buf
	if bounded {
		buf = s.Buffer
	}
	ch := make(chan SweepPoint, buf)
	dropped := false
	go func() {
		defer close(ch)
		_ = pool.OrderedWorker(workers, len(scenarios), func(w, i int) error {
			pt := SweepPoint{Index: i, Scenario: scenarios[i]}
			if err := ctx.Err(); err != nil {
				pt.Err = err // fail fast once cancelled
			} else {
				pt.Report, pt.Err = perWorker[w].Run(ctx, scenarios[i])
			}
			points[i] = pt
			return nil
		}, func(i int) {
			// Release the ordering slot's Report as soon as the point is
			// handed over, so a bounded stream retains no more than the
			// channel holds.
			pt := points[i]
			points[i] = SweepPoint{}
			if !bounded {
				ch <- pt // never blocks: the channel holds the sweep
				return
			}
			if dropped {
				return
			}
			select {
			case ch <- pt: // prefer delivery whenever the buffer has room,
				return // even if ctx is already cancelled
			default:
			}
			select {
			case ch <- pt:
			case <-ctx.Done():
				// Bounded mode's abandonment contract: once ctx is
				// cancelled the emitter stops delivering instead of
				// parking on a channel nobody may be reading. Later
				// points are dropped too, so a consumer never sees a
				// gap in the middle of the stream.
				dropped = true
			}
		})
	}()
	return ch
}

// Run executes the sweep to completion and returns every point in
// scenario order, plus the first per-point error (by index) if any.
func (s *Sweep) Run(ctx context.Context) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(s.Scenarios))
	for pt := range s.Stream(ctx) {
		points = append(points, pt)
	}
	for _, pt := range points {
		if pt.Err != nil {
			return points, fmt.Errorf("bftbcast: sweep point %d: %w", pt.Index, pt.Err)
		}
	}
	return points, nil
}
