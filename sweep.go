package bftbcast

import (
	"context"
	"fmt"
	"runtime"

	"bftbcast/internal/pool"
)

// SweepPoint is the outcome of one Scenario of a Sweep. Exactly one of
// Report and Err is non-nil.
type SweepPoint struct {
	// Index is the point's position in Sweep.Scenarios.
	Index    int
	Scenario *Scenario
	Report   *Report
	Err      error
}

// Sweep runs a list of Scenarios through one Engine on the
// deterministic worker pool the experiment harness uses, streaming the
// results in scenario order. Because every Scenario carries its own
// seeds, the reports are identical for any worker count; only the
// wall-clock time changes.
//
//	sweep := bftbcast.Sweep{Workers: runtime.NumCPU(), Scenarios: points}
//	for pt := range sweep.Stream(ctx) {
//		...
//	}
type Sweep struct {
	// Engine executes the points; nil means EngineFast.
	Engine Engine
	// Workers bounds the worker pool (<= 0 means runtime.NumCPU(), 1
	// runs sequentially).
	Workers int
	// Scenarios are the sweep points, streamed back in this order.
	Scenarios []*Scenario
}

// workerPinned is implemented by engines that can hand out a dedicated
// per-worker instance owning reusable run state. Sweep pins one instance
// per pool worker, so a sweep never loses its warmed engine state to
// pool churn and every point runs on the same worker's allocations.
type workerPinned interface {
	pinned() Engine
}

// Stream launches the sweep and returns a channel that yields one
// SweepPoint per Scenario, in scenario order, each as soon as it (and
// every earlier point) has finished. The channel is buffered for the
// whole sweep and closes after the last point, so abandoning it leaks
// nothing; cancelling ctx makes the remaining points fail fast with
// ctx.Err().
//
// Engines that support it (EngineFast) are pinned per worker: each pool
// worker runs its points on a private reusable engine, while the
// topology-derived artifacts (the compiled plan) stay shared across all
// workers. Reports are identical for any worker count either way.
func (s *Sweep) Stream(ctx context.Context) <-chan SweepPoint {
	if ctx == nil {
		ctx = context.Background()
	}
	eng := s.Engine
	if eng == nil {
		eng = EngineFast
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if len(s.Scenarios) < workers {
		// Pinned engines are warmed per worker; never build more of them
		// than there are points to run (min 1 keeps the pool well-formed
		// for an empty sweep).
		workers = len(s.Scenarios)
		if workers < 1 {
			workers = 1
		}
	}
	perWorker := make([]Engine, workers)
	for w := range perWorker {
		if p, ok := eng.(workerPinned); ok {
			perWorker[w] = p.pinned()
		} else {
			perWorker[w] = eng
		}
	}
	scenarios := s.Scenarios
	points := make([]SweepPoint, len(scenarios))
	ch := make(chan SweepPoint, len(scenarios))
	go func() {
		defer close(ch)
		_ = pool.OrderedWorker(workers, len(scenarios), func(w, i int) error {
			pt := SweepPoint{Index: i, Scenario: scenarios[i]}
			if err := ctx.Err(); err != nil {
				pt.Err = err // fail fast once cancelled
			} else {
				pt.Report, pt.Err = perWorker[w].Run(ctx, scenarios[i])
			}
			points[i] = pt
			return nil
		}, func(i int) {
			ch <- points[i] // never blocks: the channel holds the sweep
		})
	}()
	return ch
}

// Run executes the sweep to completion and returns every point in
// scenario order, plus the first per-point error (by index) if any.
func (s *Sweep) Run(ctx context.Context) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(s.Scenarios))
	for pt := range s.Stream(ctx) {
		points = append(points, pt)
	}
	for _, pt := range points {
		if pt.Err != nil {
			return points, fmt.Errorf("bftbcast: sweep point %d: %w", pt.Index, pt.Err)
		}
	}
	return points, nil
}
