package bftbcast_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"bftbcast"
)

// sweepScenarios builds n protocol-B points with varying adversary
// seeds. Strategies are single-run, so each point carries its own.
func sweepScenarios(t *testing.T, n int) []*bftbcast.Scenario {
	t.Helper()
	params := bftbcast.Params{R: 2, T: 2, MF: 2}
	tor, err := bftbcast.NewTorus(20, 20, params.R)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	base, err := bftbcast.NewScenario(
		bftbcast.WithTopology(tor),
		bftbcast.WithParams(params),
		bftbcast.WithSpec(spec),
	)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*bftbcast.Scenario, n)
	for i := range out {
		out[i], err = base.With(bftbcast.WithAdversary(
			bftbcast.RandomPlacement{T: params.T, Density: 0.05, Seed: uint64(i + 1)},
			bftbcast.NewCorruptor(),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSweepStreamOrderAndDeterminism streams the same sweep
// sequentially and on a 4-worker pool: points must arrive in scenario
// order and the reports must be identical for any worker count.
func TestSweepStreamOrderAndDeterminism(t *testing.T) {
	const n = 8
	collect := func(workers int) []bftbcast.SweepPoint {
		t.Helper()
		sweep := bftbcast.Sweep{Workers: workers, Scenarios: sweepScenarios(t, n)}
		var pts []bftbcast.SweepPoint
		for pt := range sweep.Stream(context.Background()) {
			if pt.Err != nil {
				t.Fatalf("point %d: %v", pt.Index, pt.Err)
			}
			pts = append(pts, pt)
		}
		return pts
	}
	seq := collect(1)
	par := collect(4)
	if len(seq) != n || len(par) != n {
		t.Fatalf("got %d/%d points, want %d", len(seq), len(par), n)
	}
	for i := range seq {
		if seq[i].Index != i || par[i].Index != i {
			t.Fatalf("out-of-order stream: seq[%d].Index=%d par[%d].Index=%d",
				i, seq[i].Index, i, par[i].Index)
		}
		if !reflect.DeepEqual(seq[i].Report, par[i].Report) {
			t.Fatalf("point %d differs between 1 and 4 workers:\nseq: %+v\npar: %+v",
				i, seq[i].Report, par[i].Report)
		}
	}
}

// TestSweepPinnedRunnerMixedTopologies interleaves three topologies
// (two torus sizes and an RGG) through the same sweep: each pinned
// per-worker Runner must retarget correctly mid-sweep, and the reports
// must stay identical for any worker count — the reuse guarantee the
// pinned-runner optimization must not break.
func TestSweepPinnedRunnerMixedTopologies(t *testing.T) {
	params := bftbcast.Params{R: 2, T: 2, MF: 2}
	spec, err := bftbcast.NewProtocolB(params)
	if err != nil {
		t.Fatal(err)
	}
	torA, err := bftbcast.NewTorus(20, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	torB, err := bftbcast.NewTorus(15, 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	rgg, err := bftbcast.NewRGG(120, 5)
	if err != nil {
		t.Fatal(err)
	}
	rggParams := bftbcast.Params{R: 1, T: 1, MF: 1}
	rggSpec, err := bftbcast.NewProtocolB(rggParams)
	if err != nil {
		t.Fatal(err)
	}
	build := func() []*bftbcast.Scenario {
		var out []*bftbcast.Scenario
		for i := 0; i < 9; i++ {
			var sc *bftbcast.Scenario
			var err error
			switch i % 3 {
			case 0:
				sc, err = bftbcast.NewScenario(
					bftbcast.WithTopology(torA), bftbcast.WithParams(params), bftbcast.WithSpec(spec),
					bftbcast.WithAdversary(bftbcast.RandomPlacement{T: params.T, Density: 0.05, Seed: uint64(i + 1)}, bftbcast.NewCorruptor()),
				)
			case 1:
				sc, err = bftbcast.NewScenario(
					bftbcast.WithTopology(torB), bftbcast.WithParams(params), bftbcast.WithSpec(spec),
					bftbcast.WithAdversary(bftbcast.RandomPlacement{T: params.T, Density: 0.05, Seed: uint64(i + 1)}, bftbcast.NewCorruptor()),
				)
			default:
				sc, err = bftbcast.NewScenario(
					bftbcast.WithTopology(rgg), bftbcast.WithParams(rggParams), bftbcast.WithSpec(rggSpec),
					bftbcast.WithAdversary(bftbcast.RandomPlacement{T: rggParams.T, Density: 0.03, Seed: uint64(i + 1)}, bftbcast.NewCorruptor()),
				)
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, sc)
		}
		return out
	}
	var baseline []bftbcast.SweepPoint
	for _, workers := range []int{1, 2, 4} {
		sweep := bftbcast.Sweep{Workers: workers, Scenarios: build()}
		pts, err := sweep.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseline == nil {
			baseline = pts
			continue
		}
		for i := range pts {
			if !reflect.DeepEqual(baseline[i].Report, pts[i].Report) {
				t.Fatalf("point %d differs between 1 and %d workers", i, workers)
			}
		}
	}
}

// TestSweepRun checks the collecting wrapper and its first-error
// contract (an actor-engine sweep over adversarial scenarios fails on
// every point; Run must surface point 0's error and still return all
// points).
func TestSweepRun(t *testing.T) {
	pts, err := (&bftbcast.Sweep{Workers: 2, Scenarios: sweepScenarios(t, 4)}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i, pt := range pts {
		if pt.Report == nil || !pt.Report.Completed {
			t.Fatalf("point %d: %+v", i, pt.Report)
		}
	}

	bad := bftbcast.Sweep{Engine: bftbcast.EngineActor, Workers: 2, Scenarios: sweepScenarios(t, 3)}
	pts, err = bad.Run(context.Background())
	if err == nil {
		t.Fatal("actor sweep over adversarial scenarios: want an error")
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points with error, want all 3", len(pts))
	}
}

// TestSweepWorkerCounts pins the worker-count seam: Workers of 0 (auto),
// 1 (sequential) and more than len(Scenarios) — which must clamp to the
// scenario count instead of building pinned engines that never run a
// point — all yield identical reports, and an empty sweep closes cleanly
// for any Workers value.
func TestSweepWorkerCounts(t *testing.T) {
	const n = 3
	var baseline []bftbcast.SweepPoint
	for _, workers := range []int{0, 1, n + 9} {
		pts, err := (&bftbcast.Sweep{Workers: workers, Scenarios: sweepScenarios(t, n)}).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(pts) != n {
			t.Fatalf("workers=%d: got %d points, want %d", workers, len(pts), n)
		}
		if baseline == nil {
			baseline = pts
			continue
		}
		for i := range pts {
			if !reflect.DeepEqual(baseline[i].Report, pts[i].Report) {
				t.Fatalf("point %d differs at workers=%d", i, workers)
			}
		}
	}
	for _, workers := range []int{0, 1, 4} {
		for range (&bftbcast.Sweep{Workers: workers}).Stream(context.Background()) {
			t.Fatalf("empty sweep yielded a point at workers=%d", workers)
		}
	}
}

// waitNoGoroutineGrowth polls until the goroutine count returns to (near)
// its baseline, mirroring the actor-cancellation leak check: the runtime
// gets a few scheduling rounds to retire finished goroutines before the
// test declares a leak.
func waitNoGoroutineGrowth(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after — sweep goroutines leaked", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepStreamAbandonNoLeak drops the stream channel mid-sweep. The
// doc comment promises abandoning the channel leaks nothing: it is
// buffered for the whole sweep, so the producer finishes its points and
// exits with no consumer.
func TestSweepStreamAbandonNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		sweep := bftbcast.Sweep{Workers: 2, Scenarios: sweepScenarios(t, 6)}
		ch := sweep.Stream(context.Background())
		<-ch // consume one point, then abandon the channel mid-sweep
	}()
	waitNoGoroutineGrowth(t, before)
}

// TestSweepStreamCancelNoLeak cancels the context from inside a running
// point and then abandons the channel: the workers must drain the
// remaining points fail-fast and the producer must still close down.
func TestSweepStreamCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	func() {
		scenarios := sweepScenarios(t, 8)
		var err error
		scenarios[2], err = scenarios[2].With(bftbcast.WithObserver(
			bftbcast.FuncObserver{OnSlotStart: func(int) { cancel() }},
		))
		if err != nil {
			t.Fatal(err)
		}
		sweep := bftbcast.Sweep{Workers: 2, Scenarios: scenarios}
		ch := sweep.Stream(ctx)
		<-ch // one point, then walk away from a cancelled sweep
	}()
	waitNoGoroutineGrowth(t, before)
}

// TestSweepStreamBounded pins the bounded-buffer mode: the channel's
// capacity is the requested bound (not the whole sweep), every point
// still arrives in order, and the reports are identical to an unbounded
// stream — the regression test for the daemon's constant-memory mode.
func TestSweepStreamBounded(t *testing.T) {
	const n, buffer = 10, 2
	scenarios := sweepScenarios(t, n)
	unbounded := bftbcast.Sweep{Workers: 2, Scenarios: scenarios}
	baseline, err := unbounded.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	bounded := bftbcast.Sweep{Workers: 2, Scenarios: sweepScenarios(t, n), Buffer: buffer}
	ch := bounded.Stream(context.Background())
	if got := cap(ch); got != buffer {
		t.Fatalf("bounded stream channel capacity = %d, want %d", got, buffer)
	}
	var got int
	for pt := range ch {
		if pt.Err != nil {
			t.Fatalf("point %d: %v", pt.Index, pt.Err)
		}
		if pt.Index != got {
			t.Fatalf("out-of-order point %d at position %d", pt.Index, got)
		}
		if !reflect.DeepEqual(pt.Report, baseline[pt.Index].Report) {
			t.Fatalf("point %d differs from the unbounded stream", pt.Index)
		}
		got++
		time.Sleep(time.Millisecond) // a slow consumer exercises the backpressure path
	}
	if got != n {
		t.Fatalf("bounded stream yielded %d points, want %d", got, n)
	}

	// A Buffer at or above the sweep size falls back to the abandon-safe
	// whole-sweep buffer.
	wide := bftbcast.Sweep{Workers: 1, Scenarios: sweepScenarios(t, 3), Buffer: 64}
	if got := cap(wide.Stream(context.Background())); got != 3 {
		t.Fatalf("oversized Buffer: channel capacity = %d, want 3", got)
	}
}

// TestSweepStreamBoundedCancelAbandonNoLeak abandons a bounded stream
// after cancelling its context — the documented way out — with the
// emitter blocked on a full channel: the producer side must drop the
// undelivered points and shut down instead of parking forever.
func TestSweepStreamBoundedCancelAbandonNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	func() {
		sweep := bftbcast.Sweep{Workers: 2, Scenarios: sweepScenarios(t, 8), Buffer: 1}
		ch := sweep.Stream(ctx)
		<-ch // one point, leaving the emitter to fill the 1-slot buffer and block
		cancel()
	}()
	waitNoGoroutineGrowth(t, before)
}

// TestSweepCancellation cancels mid-sweep — deterministically, from an
// Observer inside point 5's own run on a sequential pool: the stream
// must still close after yielding one point per scenario, with point 5
// interrupted mid-run and every later point failing fast, all with
// context.Canceled.
func TestSweepCancellation(t *testing.T) {
	const n, cancelAt = 12, 5
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scenarios := sweepScenarios(t, n)
	var err error
	scenarios[cancelAt], err = scenarios[cancelAt].With(bftbcast.WithObserver(
		bftbcast.FuncObserver{OnSlotStart: func(int) { cancel() }},
	))
	if err != nil {
		t.Fatal(err)
	}
	sweep := bftbcast.Sweep{Workers: 1, Scenarios: scenarios}
	var got int
	for pt := range sweep.Stream(ctx) {
		if pt.Index != got {
			t.Fatalf("out-of-order point %d at position %d", pt.Index, got)
		}
		got++
		if pt.Index < cancelAt {
			if pt.Err != nil {
				t.Fatalf("point %d before the cancel: %v", pt.Index, pt.Err)
			}
			continue
		}
		if !errors.Is(pt.Err, context.Canceled) {
			t.Fatalf("point %d after the cancel: err = %v, want context.Canceled", pt.Index, pt.Err)
		}
	}
	if got != n {
		t.Fatalf("stream yielded %d points, want %d", got, n)
	}
}
